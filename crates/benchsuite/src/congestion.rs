//! The congestion benchmark (§IV-A.3): pairs of threads on different pairs
//! of cores ping-pong simultaneously. The paper "did not observe any
//! increase in latency" — mesh congestion is absent — and Table I reports
//! "None". The benchmark exists to *check* that, so we run it faithfully.

use crate::state_prep::prep_lines;
use knl_arch::CoreId;
use knl_sim::{AccessKind, Machine, MesifState, Op, Program, SimTime};

/// The congestion workload as flag-synchronized Op-IR programs: each pair
/// ping-pongs a private line, every handoff ordered by its own flag pair
/// (B dirties and publishes; A reads, dirties, publishes back; B reads).
/// Pairs touch disjoint lines, so the only cross-thread traffic is the
/// intended mesh crossing and the workload analyzes race-free.
pub fn congestion_programs(pairs: &[(CoreId, CoreId)], iters: usize) -> Vec<Program> {
    let mut programs = Vec::with_capacity(pairs.len() * 2);
    for (pi, &(a, b)) in pairs.iter().enumerate() {
        let addr = |it: usize| (1u64 << 26) + ((it * pairs.len() + pi) as u64) * 64;
        let flag_b = (1u64 << 30) + (pi as u64) * 4096;
        let flag_a = flag_b + 2048;
        let mut pa = Program::on_core(a);
        let mut pb = Program::on_core(b);
        for it in 0..iters {
            let gen = it as u64 + 1;
            pb.push(Op::Write(addr(it))).push(Op::SetFlag {
                addr: flag_b,
                val: gen,
            });
            pa.push(Op::WaitFlag {
                addr: flag_b,
                val: gen,
            })
            .push(Op::MarkStart(it))
            .push(Op::Read(addr(it)))
            .push(Op::Write(addr(it)))
            .push(Op::SetFlag {
                addr: flag_a,
                val: gen,
            })
            .push(Op::MarkEnd(it));
            pb.push(Op::WaitFlag {
                addr: flag_a,
                val: gen,
            })
            .push(Op::Read(addr(it)));
        }
        programs.push(pa);
        programs.push(pb);
    }
    programs
}

/// For each pair count, run simultaneous one-line ping-pongs and return the
/// median per-pair round latency (ns). Pairs are (core 2k, core 2k+1 of a
/// distant tile) so every transfer crosses the mesh. As in the paper, the
/// benchmark cannot choose mesh placement ("we do not know the exact
/// location of the tiles [...] and we cannot produce layouts that stress
/// specific rows or columns").
pub fn congestion(m: &mut Machine, pair_counts: &[usize], iters: usize) -> Vec<(usize, f64)> {
    let num_cores = m.config().num_cores();
    let half = (num_cores / 2) as u16;
    let all: Vec<(CoreId, CoreId)> = (0..half).map(|p| (CoreId(p), CoreId(p + half))).collect();
    pair_counts
        .iter()
        .map(|&pairs| {
            assert!(pairs * 2 <= num_cores, "not enough cores for {pairs} pairs");
            (pairs, congestion_with_pairs(m, &all[..pairs], iters))
        })
        .collect()
}

/// Congestion with explicit endpoint placement (used by the mesh-occupancy
/// ablation, where the *simulator* — unlike the paper's software — does
/// know tile coordinates and can stress a single ring). Returns the median
/// worst per-pair round latency, ns.
pub fn congestion_with_pairs(m: &mut Machine, pairs: &[(CoreId, CoreId)], iters: usize) -> f64 {
    let mut meds = Vec::new();
    let mut now: SimTime = 0;
    for it in 0..iters {
        // Prepare every pair's line first, then start all ping-pongs at a
        // common window (the paper's TSC-window synchronization).
        let mut t0 = now;
        for (p, &(a, b)) in pairs.iter().enumerate() {
            let addr = (1u64 << 26) + ((it * pairs.len() + p) as u64) * 64;
            t0 = t0.max(prep_lines(m, b, a, addr, 1, MesifState::Modified, now));
        }
        let mut worst = 0u64;
        for (p, &(a, b)) in pairs.iter().enumerate() {
            let addr = (1u64 << 26) + ((it * pairs.len() + p) as u64) * 64;
            // A reads B's line; B reads it back after A dirties it.
            let r1 = m.access(a, addr, AccessKind::Read, t0);
            let w = m.access(a, addr, AccessKind::Write, r1.complete);
            let r2 = m.access(b, addr, AccessKind::Read, w.complete);
            worst = worst.max(r2.complete - t0);
        }
        meds.push(worst as f64 / 1000.0);
        now += 10_000_000;
        m.reset_caches();
    }
    meds.sort_by(f64::total_cmp);
    meds[meds.len() / 2]
}

/// Verdict in the spirit of Table I: does latency stay flat as pairs grow?
/// Returns `true` when the worst median is within `tolerance` of the best.
pub fn is_congestion_free(points: &[(usize, f64)], tolerance: f64) -> bool {
    let min = points.iter().map(|(_, l)| *l).fold(f64::INFINITY, f64::min);
    let max = points.iter().map(|(_, l)| *l).fold(0.0, f64::max);
    max <= min * (1.0 + tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};

    #[test]
    fn mesh_is_congestion_free() {
        let mut m = Machine::new(MachineConfig::knl7210(
            ClusterMode::Quadrant,
            MemoryMode::Flat,
        ));
        m.set_jitter(0);
        let pts = congestion(&mut m, &[1, 4, 8, 16], 5);
        assert_eq!(pts.len(), 4);
        assert!(
            is_congestion_free(&pts, 0.15),
            "paper observed no congestion; got {pts:?}"
        );
    }

    #[test]
    fn tolerance_detects_slope() {
        let pts = vec![(1usize, 100.0), (8, 180.0)];
        assert!(!is_congestion_free(&pts, 0.15));
        assert!(is_congestion_free(&pts, 0.9));
    }
}
