//! Window-based start synchronization (§III-A).
//!
//! The paper synchronizes benchmark threads "with window intervals based on
//! the use of the TSC counter", after measuring the TSC skew among cores.
//! We model a per-core TSC skew (deterministic from a seed) and compute, for
//! each iteration, the absolute window start each thread should wait for —
//! i.e. the `WaitUntil` times fed to the simulator.

use knl_arch::topology::splitmix64;
use knl_arch::Schedule;
use knl_sim::{Op, Program, SimTime, StreamKind};

/// Per-core TSC skew model plus window schedule.
#[derive(Debug, Clone)]
pub struct WindowSync {
    /// Residual skew per core after calibration (ps). The paper measured a
    /// 10 ns resolution on the TSC read, so residuals are within ±10 ns.
    skew_ps: Vec<i64>,
    /// Window period (ps): iteration `k` starts at `base + k * period`.
    period_ps: SimTime,
}

impl WindowSync {
    /// `max_skew_ns` bounds the residual per-core skew (paper: 10 ns TSC
    /// read resolution).
    pub fn new(num_cores: usize, period_ps: SimTime, max_skew_ns: u64, seed: u64) -> Self {
        let span = (2 * max_skew_ns * 1000 + 1) as i64;
        let skew_ps = (0..num_cores)
            .map(|c| {
                (splitmix64(seed ^ (c as u64) << 7) as i64).rem_euclid(span)
                    - (max_skew_ns * 1000) as i64
            })
            .collect();
        WindowSync { skew_ps, period_ps }
    }

    /// Absolute simulated time core `core` believes window `k` starts at.
    pub fn window_start(&self, core: usize, k: usize) -> SimTime {
        let nominal = (k as SimTime + 1) * self.period_ps;
        (nominal as i64 + self.skew_ps[core]).max(0) as SimTime
    }

    /// The window period.
    pub fn period_ps(&self) -> SimTime {
        self.period_ps
    }

    /// A window-synchronized streaming workload over disjoint per-thread
    /// buffers: each thread waits for its (skewed) view of window `k`,
    /// then streams `lines` lines of its own region. The shape every
    /// window-started benchmark uses; threads share nothing, so the
    /// workload analyzes race-free and any conflict a caller introduces
    /// on top is its own.
    pub fn window_programs(
        &self,
        threads: usize,
        schedule: Schedule,
        num_cores: usize,
        lines: u64,
        iters: usize,
    ) -> Vec<Program> {
        let stride = lines * 64 * 3;
        (0..threads)
            .map(|ti| {
                let hw = schedule.place(ti, num_cores);
                let base = (1u64 << 27) + (ti as u64) * stride;
                let (a, b, c) = (base, base + lines * 64, base + 2 * lines * 64);
                let mut p = Program::new(hw);
                for it in 0..iters {
                    p.push(Op::WaitUntil(self.window_start(hw.core().0 as usize, it)))
                        .push(Op::MarkStart(it))
                        .push(Op::Stream {
                            kind: StreamKind::Triad,
                            a,
                            b,
                            c,
                            lines,
                            vectorized: true,
                        })
                        .push(Op::MarkEnd(it));
                }
                p
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_bounded_and_deterministic() {
        let a = WindowSync::new(64, 1_000_000, 10, 42);
        let b = WindowSync::new(64, 1_000_000, 10, 42);
        for c in 0..64 {
            let s = a.window_start(c, 0) as i64 - 1_000_000;
            assert!(s.abs() <= 10_000, "core {c} skew {s}");
            assert_eq!(a.window_start(c, 3), b.window_start(c, 3));
        }
    }

    #[test]
    fn windows_advance_by_period() {
        let w = WindowSync::new(4, 500_000, 0, 0);
        assert_eq!(w.window_start(0, 1) - w.window_start(0, 0), 500_000);
        assert_eq!(w.window_start(2, 0), 500_000);
    }

    #[test]
    fn different_seeds_different_skew() {
        let a = WindowSync::new(8, 1_000_000, 10, 1);
        let b = WindowSync::new(8, 1_000_000, 10, 2);
        assert!((0..8).any(|c| a.window_start(c, 0) != b.window_start(c, 0)));
    }
}
