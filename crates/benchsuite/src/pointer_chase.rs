//! Single-cache-line transfer latency by state and placement (Table I
//! latency rows, Fig. 4), BenchIT-style: dependent accesses, medians.

use crate::state_prep::prep_lines;
use knl_arch::CoreId;
use knl_sim::{AccessKind, Machine, MesifState, Op, Program, SimTime};
use knl_stats::Sample;

/// Gap between iterations (lets shared resources drain).
const ITER_GAP_PS: SimTime = 5_000_000;

/// The single-line transfer workload as flag-synchronized Op-IR programs:
/// the owner dirties a fresh line each iteration and publishes it; the
/// reader waits for the publication and performs the measured dependent
/// load. The cross-thread handoff is flag-ordered, so the workload
/// analyzes race-free.
pub fn transfer_programs(owner: CoreId, reader: CoreId, iters: usize) -> Vec<Program> {
    let flag = 1u64 << 30;
    let mut po = Program::on_core(owner);
    let mut pr = Program::on_core(reader);
    for it in 0..iters {
        let gen = it as u64 + 1;
        let addr = (1u64 << 23) + (it as u64) * 64;
        po.push(Op::Write(addr)).push(Op::SetFlag {
            addr: flag,
            val: gen,
        });
        pr.push(Op::WaitFlag {
            addr: flag,
            val: gen,
        })
        .push(Op::MarkStart(it))
        .push(Op::Read(addr))
        .push(Op::MarkEnd(it));
    }
    vec![po, pr]
}

/// Local (L1) load latency: warm line, dependent re-reads.
pub fn local_latency(m: &mut Machine, core: CoreId, iters: usize) -> Sample {
    let addr = 1 << 22;
    let mut now = m.access(core, addr, AccessKind::Read, 0).complete;
    let mut s = Sample::new();
    for _ in 0..iters {
        let out = m.access(core, addr, AccessKind::Read, now);
        s.push((out.complete - now) as f64 / 1000.0);
        now = out.complete + 1_000;
    }
    s
}

/// Latency of `reader` loading one line held by `owner`'s tile in `state`.
/// A fresh line is prepared each iteration (as BenchIT re-arranges state
/// between passes). `helper` (a third tile) assists S/F preparation.
pub fn transfer_latency(
    m: &mut Machine,
    owner: CoreId,
    reader: CoreId,
    helper: CoreId,
    state: MesifState,
    iters: usize,
) -> Sample {
    let mut s = Sample::new();
    let mut now: SimTime = 0;
    for i in 0..iters {
        let addr = (1u64 << 23) + (i as u64) * 64;
        now = prep_lines(m, owner, helper, addr, 1, state, now);
        let out = m.access(reader, addr, AccessKind::Read, now);
        s.push((out.complete - now) as f64 / 1000.0);
        now = out.complete + ITER_GAP_PS;
    }
    s
}

/// Fig. 4: latency from `origin` to every other core, for each state.
/// Returns (partner core, state letter, median ns).
pub fn latency_map(
    m: &mut Machine,
    origin: CoreId,
    states: &[MesifState],
    iters: usize,
) -> Vec<(u16, char, f64)> {
    let num_cores = m.config().num_cores() as u16;
    let mut out = Vec::new();
    for partner in 0..num_cores {
        if partner == origin.0 {
            continue;
        }
        let owner = CoreId(partner);
        // Helper: any tile different from both owner and origin.
        let helper = (0..num_cores)
            .map(CoreId)
            .find(|c| c.tile() != owner.tile() && c.tile() != origin.tile())
            .expect("machine has ≥3 tiles");
        for &st in states {
            let sample = if st == MesifState::Invalid {
                // I: the line comes from memory regardless of the partner;
                // salt by partner id so no region is ever re-read.
                invalid_latency_salted(m, origin, iters, partner as u64)
            } else {
                transfer_latency(m, owner, origin, helper, st, iters)
            };
            out.push((partner, st.letter(), sample.median()));
        }
    }
    out
}

/// Latency of reading lines nobody caches (served by memory).
pub fn invalid_latency(m: &mut Machine, reader: CoreId, iters: usize) -> Sample {
    invalid_latency_salted(m, reader, iters, 0)
}

/// [`invalid_latency`] over a disjoint address region per `salt`, so
/// repeated sweeps (e.g. one per partner core in Fig. 4) never re-touch
/// cached lines.
pub fn invalid_latency_salted(m: &mut Machine, reader: CoreId, iters: usize, salt: u64) -> Sample {
    let mut s = Sample::new();
    let mut now: SimTime = 0;
    let region = (1u64 << 25) + salt * (iters as u64 + 1) * 4096;
    for i in 0..iters {
        let addr = region + (i as u64) * 4096; // distinct sets, never cached
        let out = m.access(reader, addr, AccessKind::Read, now);
        s.push((out.complete - now) as f64 / 1000.0);
        now = out.complete + ITER_GAP_PS;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat));
        m.set_jitter(0);
        m
    }

    #[test]
    fn local_is_l1() {
        let mut m = machine();
        let s = local_latency(&mut m, CoreId(0), 11);
        assert!((s.median() - 3.8).abs() < 0.5, "{}", s.median());
    }

    #[test]
    fn tile_state_ordering() {
        // Table I: tile M(34) > E(18) > S/F(14).
        let mut m = machine();
        let owner = CoreId(0);
        let reader = CoreId(1);
        let helper = CoreId(20);
        let lm = transfer_latency(&mut m, owner, reader, helper, MesifState::Modified, 9).median();
        let le = transfer_latency(&mut m, owner, reader, helper, MesifState::Exclusive, 9).median();
        let ls = transfer_latency(&mut m, owner, reader, helper, MesifState::Shared, 9).median();
        assert!(lm > le && le > ls, "M={lm} E={le} S={ls}");
        assert!((lm - 34.0).abs() < 8.0, "tile M {lm}");
        assert!((ls - 14.0).abs() < 4.0, "tile S {ls}");
    }

    #[test]
    fn remote_in_paper_band() {
        let mut m = machine();
        let owner = CoreId(40);
        let reader = CoreId(0);
        let helper = CoreId(20);
        let lm = transfer_latency(&mut m, owner, reader, helper, MesifState::Modified, 9).median();
        assert!((90.0..160.0).contains(&lm), "remote M {lm}");
        let ls = transfer_latency(&mut m, owner, reader, helper, MesifState::Shared, 9).median();
        assert!(ls < lm, "S {ls} < M {lm}");
    }

    #[test]
    fn invalid_is_memory_latency() {
        let mut m = machine();
        let s = invalid_latency(&mut m, CoreId(0), 9);
        assert!((110.0..190.0).contains(&s.median()), "{}", s.median());
    }

    #[test]
    fn latency_map_covers_all_partners() {
        let mut m = machine();
        let map = latency_map(&mut m, CoreId(0), &[MesifState::Modified], 3);
        assert_eq!(map.len(), 63);
        // Same-tile partner (core 1) must be the fastest M transfer.
        let tile_lat = map.iter().find(|(c, _, _)| *c == 1).unwrap().2;
        for (c, _, l) in &map {
            if *c != 1 {
                assert!(*l > tile_lat, "core {c}: {l} vs tile {tile_lat}");
            }
        }
    }
}
