//! JSON encode/decode for [`SuiteResults`] (the suite cache on disk).
//!
//! Hand-rolled over [`knl_stats::json::Json`] so the workspace stays free of
//! external crates. Floats are rendered with shortest-round-trip formatting,
//! so `decode(encode(r)) == r` is bit-exact — cached suite results replayed
//! from disk compare equal to freshly measured ones.
//!
//! Decoding is total-but-fallible: any structural mismatch (including files
//! written by older formats) returns `None` and callers re-measure.

use crate::measurement::{BwPoint, CacheResults, LatencyStat, MemResults, SuiteResults};
use knl_arch::{ClusterMode, MemoryMode, Schedule};
use knl_sim::StreamKind;
use knl_stats::json::Json;
use knl_stats::{MedianCi, Sample};

/// Render suite results as a JSON string.
pub fn encode_suite(r: &SuiteResults) -> String {
    suite_json(r).render()
}

/// Parse suite results from a JSON string (inverse of [`encode_suite`]).
pub fn decode_suite(s: &str) -> Option<SuiteResults> {
    suite_from(&Json::parse(s)?)
}

fn suite_json(r: &SuiteResults) -> Json {
    Json::obj(vec![
        ("cluster", Json::Str(r.cluster.name().into())),
        ("memory", Json::Str(r.memory.name().into())),
        ("cache", cache_json(&r.cache)),
        ("mem", mem_json(&r.mem)),
    ])
}

fn suite_from(v: &Json) -> Option<SuiteResults> {
    Some(SuiteResults {
        cluster: ClusterMode::from_name(v.get("cluster")?.as_str()?)?,
        memory: MemoryMode::from_name(v.get("memory")?.as_str()?)?,
        cache: cache_from(v.get("cache")?)?,
        mem: mem_from(v.get("mem")?)?,
    })
}

fn sample_json(s: &Sample) -> Json {
    Json::arr(s.values(), |x| Json::Num(*x))
}

fn sample_from(v: &Json) -> Option<Sample> {
    let values = v
        .as_arr()?
        .iter()
        .map(Json::as_f64)
        .collect::<Option<Vec<_>>>()?;
    Some(Sample::from_values(values))
}

fn lat_json(l: &LatencyStat) -> Json {
    Json::obj(vec![
        ("sample", sample_json(&l.sample)),
        ("median", Json::Num(l.ci.median)),
        ("lo", Json::Num(l.ci.lo)),
        ("hi", Json::Num(l.ci.hi)),
    ])
}

fn lat_from(v: &Json) -> Option<LatencyStat> {
    Some(LatencyStat {
        sample: sample_from(v.get("sample")?)?,
        ci: MedianCi {
            median: v.get("median")?.as_f64()?,
            lo: v.get("lo")?.as_f64()?,
            hi: v.get("hi")?.as_f64()?,
        },
    })
}

fn bw_point_json(p: &BwPoint) -> Json {
    Json::obj(vec![
        ("bytes", Json::Num(p.bytes as f64)),
        ("threads", Json::Num(p.threads as f64)),
        ("schedule", Json::Str(p.schedule.name().into())),
        ("gbps_median", Json::Num(p.gbps_median)),
        ("gbps_max", Json::Num(p.gbps_max)),
    ])
}

fn bw_point_from(v: &Json) -> Option<BwPoint> {
    Some(BwPoint {
        bytes: v.get("bytes")?.as_u64()?,
        threads: v.get("threads")?.as_usize()?,
        schedule: Schedule::from_name(v.get("schedule")?.as_str()?)?,
        gbps_median: v.get("gbps_median")?.as_f64()?,
        gbps_max: v.get("gbps_max")?.as_f64()?,
    })
}

fn cache_json(c: &CacheResults) -> Json {
    let state_lats = |v: &[(char, LatencyStat)]| {
        Json::Arr(
            v.iter()
                .map(|(s, l)| Json::Arr(vec![Json::Str(s.to_string()), lat_json(l)]))
                .collect(),
        )
    };
    Json::obj(vec![
        ("local_ns", c.local_ns.as_ref().map_or(Json::Null, lat_json)),
        ("tile_ns", state_lats(&c.tile_ns)),
        ("remote_ns", state_lats(&c.remote_ns)),
        (
            "remote_map",
            Json::arr(&c.remote_map, |(core, s, ns)| {
                Json::Arr(vec![
                    Json::Num(*core as f64),
                    Json::Str(s.to_string()),
                    Json::Num(*ns),
                ])
            }),
        ),
        ("read_bw_gbps", Json::Num(c.read_bw_gbps)),
        (
            "copy_bw_gbps",
            Json::arr(&c.copy_bw_gbps, |(loc, s, g)| {
                Json::Arr(vec![
                    Json::Str(loc.clone()),
                    Json::Str(s.to_string()),
                    Json::Num(*g),
                ])
            }),
        ),
        (
            "copy_sweep",
            Json::arr(&c.copy_sweep, |(loc, s, bytes, g)| {
                Json::Arr(vec![
                    Json::Str(loc.clone()),
                    Json::Str(s.to_string()),
                    Json::Num(*bytes as f64),
                    Json::Num(*g),
                ])
            }),
        ),
        (
            "multiline_read_ns",
            Json::arr(&c.multiline_read_ns, |(lines, ns)| {
                Json::Arr(vec![Json::Num(*lines as f64), Json::Num(*ns)])
            }),
        ),
        (
            "contention",
            Json::arr(&c.contention, |(n, s)| {
                Json::Arr(vec![Json::Num(*n as f64), sample_json(s)])
            }),
        ),
        (
            "congestion",
            Json::arr(&c.congestion, |(pairs, ns)| {
                Json::Arr(vec![Json::Num(*pairs as f64), Json::Num(*ns)])
            }),
        ),
    ])
}

fn cache_from(v: &Json) -> Option<CacheResults> {
    fn pair(e: &Json) -> Option<(&Json, &Json)> {
        let a = e.as_arr()?;
        (a.len() == 2).then(|| (&a[0], &a[1]))
    }
    fn triple(e: &Json) -> Option<(&Json, &Json, &Json)> {
        let a = e.as_arr()?;
        (a.len() == 3).then(|| (&a[0], &a[1], &a[2]))
    }
    let state_lats = |v: &Json| -> Option<Vec<(char, LatencyStat)>> {
        v.as_arr()?
            .iter()
            .map(|e| {
                let (s, l) = pair(e)?;
                Some((s.as_char()?, lat_from(l)?))
            })
            .collect()
    };
    Some(CacheResults {
        local_ns: match v.get("local_ns")? {
            Json::Null => None,
            l => Some(lat_from(l)?),
        },
        tile_ns: state_lats(v.get("tile_ns")?)?,
        remote_ns: state_lats(v.get("remote_ns")?)?,
        remote_map: v
            .get("remote_map")?
            .as_arr()?
            .iter()
            .map(|e| {
                let (core, s, ns) = triple(e)?;
                Some((core.as_u64()? as u16, s.as_char()?, ns.as_f64()?))
            })
            .collect::<Option<Vec<_>>>()?,
        read_bw_gbps: v.get("read_bw_gbps")?.as_f64()?,
        copy_bw_gbps: v
            .get("copy_bw_gbps")?
            .as_arr()?
            .iter()
            .map(|e| {
                let (loc, s, g) = triple(e)?;
                Some((loc.as_str()?.to_string(), s.as_char()?, g.as_f64()?))
            })
            .collect::<Option<Vec<_>>>()?,
        copy_sweep: v
            .get("copy_sweep")?
            .as_arr()?
            .iter()
            .map(|e| {
                let a = e.as_arr()?;
                if a.len() != 4 {
                    return None;
                }
                Some((
                    a[0].as_str()?.to_string(),
                    a[1].as_char()?,
                    a[2].as_u64()?,
                    a[3].as_f64()?,
                ))
            })
            .collect::<Option<Vec<_>>>()?,
        multiline_read_ns: v
            .get("multiline_read_ns")?
            .as_arr()?
            .iter()
            .map(|e| {
                let (lines, ns) = pair(e)?;
                Some((lines.as_u64()?, ns.as_f64()?))
            })
            .collect::<Option<Vec<_>>>()?,
        contention: v
            .get("contention")?
            .as_arr()?
            .iter()
            .map(|e| {
                let (n, s) = pair(e)?;
                Some((n.as_usize()?, sample_from(s)?))
            })
            .collect::<Option<Vec<_>>>()?,
        congestion: v
            .get("congestion")?
            .as_arr()?
            .iter()
            .map(|e| {
                let (pairs, ns) = pair(e)?;
                Some((pairs.as_usize()?, ns.as_f64()?))
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

fn mem_json(m: &MemResults) -> Json {
    Json::obj(vec![
        (
            "latency_ns",
            Json::arr(&m.latency_ns, |(target, l)| {
                Json::Arr(vec![Json::Str(target.clone()), lat_json(l)])
            }),
        ),
        (
            "bw_sweeps",
            Json::arr(&m.bw_sweeps, |(kind, target, pts)| {
                Json::Arr(vec![
                    Json::Str(kind.name().into()),
                    Json::Str(target.clone()),
                    Json::arr(pts, bw_point_json),
                ])
            }),
        ),
    ])
}

fn mem_from(v: &Json) -> Option<MemResults> {
    Some(MemResults {
        latency_ns: v
            .get("latency_ns")?
            .as_arr()?
            .iter()
            .map(|e| {
                let a = e.as_arr()?;
                if a.len() != 2 {
                    return None;
                }
                Some((a[0].as_str()?.to_string(), lat_from(&a[1])?))
            })
            .collect::<Option<Vec<_>>>()?,
        bw_sweeps: v
            .get("bw_sweeps")?
            .as_arr()?
            .iter()
            .map(|e| {
                let a = e.as_arr()?;
                if a.len() != 3 {
                    return None;
                }
                let pts = a[2]
                    .as_arr()?
                    .iter()
                    .map(bw_point_from)
                    .collect::<Option<Vec<_>>>()?;
                Some((
                    StreamKind::from_name(a[0].as_str()?)?,
                    a[1].as_str()?.to_string(),
                    pts,
                ))
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_suite() -> SuiteResults {
        let lat = |vals: Vec<f64>| LatencyStat::from_sample(Sample::from_values(vals));
        SuiteResults {
            cluster: ClusterMode::Snc4,
            memory: MemoryMode::Flat,
            cache: CacheResults {
                local_ns: Some(lat(vec![3.1, 3.2, 3.15])),
                tile_ns: vec![('M', lat(vec![21.0, 21.5])), ('E', lat(vec![20.0, 20.25]))],
                remote_ns: vec![('S', lat(vec![150.0, 151.0, 149.5]))],
                remote_map: vec![(1, 'M', 154.25), (2, 'E', 160.5)],
                read_bw_gbps: 1.0 / 3.0,
                copy_bw_gbps: vec![("remote".into(), 'M', 2.5)],
                copy_sweep: vec![("remote".into(), 'M', 4096, 1.75)],
                multiline_read_ns: vec![(1, 150.0), (8, 162.5)],
                contention: vec![(4, Sample::from_values(vec![200.0, 201.5]))],
                congestion: vec![(2, 155.5)],
            },
            mem: MemResults {
                latency_ns: vec![("DRAM".into(), lat(vec![128.5, 129.0]))],
                bw_sweeps: vec![(
                    StreamKind::Triad,
                    "MCDRAM".into(),
                    vec![BwPoint {
                        bytes: 1 << 20,
                        threads: 64,
                        schedule: Schedule::Scatter,
                        gbps_median: 421.062_500_000_1,
                        gbps_max: 433.9,
                    }],
                )],
            },
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let r = sample_suite();
        let text = encode_suite(&r);
        let back = decode_suite(&text).expect("decode");
        assert_eq!(back, r);
        // Render → parse → render is a fixpoint (canonical form).
        assert_eq!(encode_suite(&back), text);
    }

    #[test]
    fn empty_defaults_roundtrip() {
        let r = SuiteResults {
            cluster: ClusterMode::A2A,
            memory: MemoryMode::Cache,
            cache: CacheResults::default(),
            mem: MemResults::default(),
        };
        assert_eq!(decode_suite(&encode_suite(&r)).unwrap(), r);
    }

    #[test]
    fn garbage_and_old_formats_rejected() {
        assert!(decode_suite("").is_none());
        assert!(decode_suite("{}").is_none());
        // serde's externally-tagged enum style from the old format.
        assert!(decode_suite(r#"{"cluster":{"Snc4":null}}"#).is_none());
    }
}
