//! Parallel experiment orchestration.
//!
//! [`SweepExecutor`] fans independent (configuration, benchmark-point) jobs
//! over a scoped worker pool built on `std::thread::scope` — no external
//! crates, so the workspace keeps building offline. Workers claim job
//! indices from a shared atomic cursor, each job constructs whatever state
//! it needs (typically a fresh [`knl_sim::Machine`], which is `Send`), and
//! results land in per-job slots that are drained **in canonical job
//! order** once the scope joins.
//!
//! # Determinism contract
//!
//! A job is the pair `(index, &item)` handed to a pure worker closure:
//! everything a job reads is either its own freshly constructed state or
//! the immutable shared inputs. Per-job random streams must be derived
//! from the job index (see [`knl_arch::SplitMixRng::for_job`]), never from
//! a shared mutable RNG. Under that discipline the merged output is
//! **bit-identical** for every `--jobs` value: `jobs = 1` runs the very
//! same closure serially, and higher job counts only change *when* each
//! job runs, not *what* it computes nor the order results are returned in.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count used when `--jobs` is absent: the `KNL_JOBS` environment
/// variable if set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("KNL_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid KNL_JOBS={v:?}");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width pool that maps a worker closure over a job list and merges
/// results in job order.
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    jobs: usize,
    progress: bool,
}

impl SweepExecutor {
    /// Executor with an explicit worker count (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        SweepExecutor {
            jobs: jobs.max(1),
            progress: false,
        }
    }

    /// Executor sized by [`default_jobs`] (`KNL_JOBS` or the core count).
    pub fn with_default_jobs() -> Self {
        Self::new(default_jobs())
    }

    /// Emit a progress line to stderr as each job completes.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `worker(index, &item)` for every item and return the results in
    /// item order.
    ///
    /// With one worker (or one job) this degenerates to a plain serial
    /// loop over the same closure — the old code path. With more, workers
    /// claim indices from an atomic cursor so no job is run twice and no
    /// job is skipped; a panicking job propagates the panic to the caller
    /// once the scope joins.
    pub fn run<J, R, F>(&self, label: &str, items: &[J], worker: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(usize, &J) -> R + Sync,
    {
        let n = items.len();
        let threads = self.jobs.min(n);
        if threads <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let r = worker(i, item);
                    self.note(label, i, n);
                    r
                })
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = worker(i, &items[i]);
                    *slots[i].lock().expect("sweep result slot poisoned") = Some(r);
                    self.note(label, i, n);
                });
            }
        });
        // Canonical-order merge: completion order is irrelevant.
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("sweep result slot poisoned")
                    .expect("every claimed job stores a result")
            })
            .collect()
    }

    fn note(&self, label: &str, index: usize, total: usize) {
        if self.progress {
            eprintln!("[{label}] job {}/{total} done (#{index})", index + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::SplitMixRng;

    #[test]
    fn results_in_job_order() {
        let items: Vec<usize> = (0..37).collect();
        let ex = SweepExecutor::new(4);
        let out = ex.run("t", &items, |i, &x| {
            assert_eq!(i, x);
            // Stagger completion so late slots finish before early ones.
            let mut rng = SplitMixRng::for_job(1, i as u64);
            std::thread::sleep(std::time::Duration::from_micros(rng.range_u64(0, 200)));
            x * 10
        });
        assert_eq!(out, (0..37).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let items: Vec<u64> = (0..24).collect();
        let work = |i: usize, &seed: &u64| {
            let mut rng = SplitMixRng::for_job(seed, i as u64);
            (0..100).map(|_| rng.next_f64()).sum::<f64>().to_bits()
        };
        let serial = SweepExecutor::new(1).run("s", &items, work);
        let parallel = SweepExecutor::new(6).run("p", &items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let ex = SweepExecutor::new(8);
        let empty: Vec<u32> = vec![];
        assert!(ex.run("e", &empty, |_, &x| x).is_empty());
        assert_eq!(ex.run("one", &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(SweepExecutor::new(0).jobs(), 1);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..50).collect();
        SweepExecutor::new(7).run("c", &items, |_, &i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }
}
