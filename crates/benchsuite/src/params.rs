//! Benchmark sweep parameters.

/// Controls the size of the benchmark sweeps. `quick()` keeps unit tests
/// fast; `paper()` matches the paper's reported sweeps (message sizes
/// 64 B–256 KB, threads 1–256, two schedules, 1000 iterations scaled down to
/// keep simulation time reasonable — medians stabilize far earlier).
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteParams {
    /// Iterations per measured configuration.
    pub iters: usize,
    /// Message sizes (bytes) for cache-to-cache bandwidth sweeps.
    pub c2c_sizes: Vec<u64>,
    /// Reader counts for the contention benchmark.
    pub contention_n: Vec<usize>,
    /// Pair counts for the congestion benchmark.
    pub congestion_pairs: Vec<usize>,
    /// Thread counts for memory bandwidth sweeps.
    pub mem_threads: Vec<usize>,
    /// Lines per thread and per iteration of a memory-bandwidth stream.
    pub mem_lines_per_thread: u64,
    /// Number of random buffers in the pool each iteration samples from.
    pub mem_pool_buffers: usize,
    /// Lines of the memory-latency chase buffer (must exceed L2 capacity).
    pub memlat_lines: u64,
    /// RNG seed for buffer randomization.
    pub seed: u64,
}

impl SuiteParams {
    /// Small sweep for unit/integration tests.
    pub fn quick() -> Self {
        SuiteParams {
            iters: 9,
            c2c_sizes: vec![64, 1 << 10, 16 << 10, 64 << 10],
            contention_n: vec![1, 4, 8, 16],
            congestion_pairs: vec![1, 4, 8],
            mem_threads: vec![1, 8, 32],
            mem_lines_per_thread: 1024,
            mem_pool_buffers: 4,
            memlat_lines: 32 << 10, // 2 MB
            seed: 0xBE7C,
        }
    }

    /// The paper's sweep (sizes 64 B–256 KB; threads 1..256). Iteration
    /// counts are scaled down from the paper's 1000 — the simulator is
    /// deterministic up to seeded jitter, so medians stabilize within ~15
    /// iterations.
    pub fn paper() -> Self {
        SuiteParams {
            iters: 15,
            c2c_sizes: (6..=18).map(|p| 1u64 << p).collect(), // 64 B .. 256 KB
            contention_n: vec![1, 2, 4, 8, 12, 16, 24, 31],
            congestion_pairs: vec![1, 2, 4, 8, 16, 31],
            mem_threads: vec![1, 8, 32, 64, 128, 256],
            mem_lines_per_thread: 2048, // 128 KB per thread per iteration
            mem_pool_buffers: 8,
            memlat_lines: 128 << 10, // 8 MB
            seed: 0xBE7C,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_span_64b_to_256kb() {
        let p = SuiteParams::paper();
        assert_eq!(*p.c2c_sizes.first().unwrap(), 64);
        assert_eq!(*p.c2c_sizes.last().unwrap(), 256 << 10);
    }

    #[test]
    fn quick_is_smaller() {
        let q = SuiteParams::quick();
        let p = SuiteParams::paper();
        assert!(q.iters < p.iters);
        assert!(q.memlat_lines < p.memlat_lines);
    }
}
