//! Integration tests for the static workload analyzer (`sim::analyze`):
//! injected defects are caught, every shipped program generator analyzes
//! clean at `Error` severity, and turning the analyzer on does not change
//! simulation output by a single bit.

use knl::arch::{ClusterMode, CoreId, MachineConfig, MemoryMode, NumaKind, Schedule};
use knl::benchsuite::sync_window::WindowSync;
use knl::benchsuite::{cachebw, congestion, contention, membw, memlat, pointer_chase, SuiteParams};
use knl::collectives::plan::RankPlan;
use knl::collectives::simspec::{self, SimLayout};
use knl::model::tree_opt::binomial_tree;
use knl::sim::{
    analyze, AnalyzeLevel, Machine, ObserverConfig, Op, Program, Rule, Runner, Severity, StreamKind,
};
use knl::sort::simsort::{simsort_programs, SimSortSpec};

fn snc4_flat() -> MachineConfig {
    MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat)
}

fn assert_clean(label: &str, programs: &[Program]) {
    let report = analyze(programs, &[]);
    assert!(
        report.clean_at(Severity::Error),
        "{label} must analyze clean at Error:\n{report}"
    );
}

#[test]
fn injected_unsynchronized_race_is_detected() {
    // Two threads write the same line with no flag edge between them.
    let mut a = Program::on_core(CoreId(0));
    a.push(Op::Write(4096));
    let mut b = Program::on_core(CoreId(4));
    b.push(Op::Write(4096));
    let report = analyze(&[a, b], &[]);
    assert!(!report.clean_at(Severity::Error), "race missed:\n{report}");
    assert!(
        report
            .by_rule(Rule::Race)
            .any(|f| f.severity == Severity::Error),
        "expected an Error-severity race finding:\n{report}"
    );
}

#[test]
fn injected_deadlock_is_detected() {
    // The wait below can never be satisfied: nobody publishes the flag.
    let mut a = Program::on_core(CoreId(0));
    a.push(Op::WaitFlag {
        addr: 1 << 30,
        val: 1,
    })
    .push(Op::Read(4096));
    let report = analyze(&[a], &[]);
    assert!(
        report
            .by_rule(Rule::Deadlock)
            .any(|f| f.severity == Severity::Error),
        "expected a deadlock finding:\n{report}"
    );
}

#[test]
fn benchsuite_generators_analyze_clean() {
    let m = Machine::new(snc4_flat());
    let params = SuiteParams::quick();

    for kind in [
        StreamKind::Read,
        StreamKind::Write,
        StreamKind::Copy,
        StreamKind::Triad,
    ] {
        for target in [membw::Target::Ddr, membw::Target::Mcdram] {
            let progs = membw::bandwidth_programs(&m, kind, target, 8, Schedule::Scatter, &params);
            assert_clean(&format!("membw {kind:?}/{target:?}"), &progs);
        }
    }

    assert_clean(
        "memlat chase",
        &[memlat::chase_program(CoreId(0), 1 << 25, 4096, 3)],
    );
    assert_clean(
        "contention 1:6",
        &contention::contention_programs(6, Schedule::Scatter, 64, 4),
    );
    assert_clean(
        "congestion 2 pairs",
        &congestion::congestion_programs(&[(CoreId(0), CoreId(32)), (CoreId(2), CoreId(34))], 4),
    );
    assert_clean(
        "cachebw copy",
        &cachebw::copy_programs(CoreId(1), CoreId(0), 4096, 4),
    );
    assert_clean(
        "pointer_chase transfer",
        &pointer_chase::transfer_programs(CoreId(1), CoreId(0), 5),
    );
    assert_clean(
        "sync_window triad",
        &WindowSync::new(64, 1_000_000, 10, 42).window_programs(8, Schedule::Scatter, 64, 64, 3),
    );
    assert_clean(
        "simsort",
        &simsort_programs(
            &m,
            &SimSortSpec {
                bytes: 1 << 16,
                threads: 4,
                schedule: Schedule::Scatter,
                memory: NumaKind::Mcdram,
            },
        ),
    );
}

#[test]
fn collective_schedules_analyze_clean() {
    let m = Machine::new(snc4_flat());
    let mut arena = m.arena();
    let n = 8;
    let iters = 3;
    let sched = Schedule::Scatter;
    let lay = SimLayout::alloc(&mut arena, NumaKind::Mcdram, n);
    let plan = RankPlan::direct(&binomial_tree(n));

    let schedules: Vec<(&str, Vec<Program>)> = vec![
        (
            "tree_broadcast",
            simspec::tree_broadcast_programs(&plan, &lay, sched, 64, iters),
        ),
        (
            "tree_reduce",
            simspec::tree_reduce_programs(&plan, &lay, sched, 64, iters),
        ),
        (
            "dissemination_barrier",
            simspec::dissemination_barrier_programs(n, 2, &lay, sched, 64, iters),
        ),
        (
            "central_barrier",
            simspec::central_barrier_programs(n, &lay, sched, 64, iters),
        ),
        (
            "flat_broadcast",
            simspec::flat_broadcast_programs(n, &lay, sched, 64, iters),
        ),
        (
            "central_reduce",
            simspec::central_reduce_programs(n, &lay, sched, 64, iters),
        ),
        (
            "mpi_broadcast",
            simspec::mpi_broadcast_programs(&plan, &lay, sched, 64, iters),
        ),
        (
            "mpi_broadcast_single_copy",
            simspec::mpi_broadcast_single_copy_programs(&plan, &lay, sched, 64, iters),
        ),
        (
            "mpi_reduce",
            simspec::mpi_reduce_programs(&plan, &lay, sched, 64, iters),
        ),
        (
            "mpi_barrier",
            simspec::mpi_barrier_programs(&plan, &lay, sched, 64, iters),
        ),
    ];
    for (label, progs) in &schedules {
        let report = simspec::analyze_schedule(&plan, progs);
        assert!(
            report.clean_at(Severity::Error),
            "{label} must analyze clean at Error:\n{report}"
        );
    }
}

#[test]
fn analyze_schedule_reports_plan_defects() {
    // A malformed plan surfaces as an Error/plan finding even when the
    // programs themselves are fine.
    let plan = RankPlan {
        parent: vec![None, Some(7)],
        children: vec![vec![1], vec![]],
        root: 0,
    };
    let report = simspec::analyze_schedule(&plan, &[]);
    assert!(
        report
            .by_rule(Rule::Plan)
            .any(|f| f.severity == Severity::Error),
        "expected a plan finding:\n{report}"
    );
}

#[test]
fn analyzer_on_is_bit_identical_to_off() {
    let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
    let iters = 7;
    let run = |level: AnalyzeLevel| {
        let mut m =
            Machine::with_observer_config(cfg.clone(), ObserverConfig::default().analyze(level));
        let programs = pointer_chase::transfer_programs(CoreId(8), CoreId(0), iters);
        let result = Runner::new(&mut m, programs).run();
        let durations: Vec<_> = (0..iters).map(|k| result.duration_ps(1, k)).collect();
        (result.end_time, durations, m.counters())
    };
    // `Info` runs the full pre-pass (races, liveness, capacity); the
    // simulated execution must not notice.
    assert_eq!(run(AnalyzeLevel::Off), run(AnalyzeLevel::Info));
}

#[test]
fn analyzer_enforces_clean_on_all_fifteen_configs() {
    // `enforce(Error)` panics on any Error finding; running a
    // flag-synchronized handoff across all fifteen machine configurations
    // smoke-tests the analyzer pre-pass inside the runner everywhere.
    // (Addresses stay below 1 GiB: cache mode exposes exactly 1 GiB.)
    let flag = 3u64 << 28;
    for cfg in MachineConfig::all_fifteen() {
        let label = cfg.label();
        let mut m = Machine::with_observer_config(
            cfg,
            ObserverConfig::default().analyze(AnalyzeLevel::Error),
        );
        let mut po = Program::on_core(CoreId(1));
        let mut pr = Program::on_core(CoreId(0));
        for it in 0..3usize {
            let gen = it as u64 + 1;
            let addr = (1u64 << 23) + (it as u64) * 64;
            po.push(Op::Write(addr)).push(Op::SetFlag {
                addr: flag,
                val: gen,
            });
            pr.push(Op::WaitFlag {
                addr: flag,
                val: gen,
            })
            .push(Op::MarkStart(it))
            .push(Op::Read(addr))
            .push(Op::MarkEnd(it));
        }
        let result = Runner::new(&mut m, vec![po, pr]).run();
        assert!(result.end_time > 0, "{label}");
    }
}
