//! The observer-hub contract: checker, tracer, and analyzer gate ride one
//! event spine and are *pure* observers. Turning all three on at once must
//! not move a single bit of simulated output — end times, per-iteration
//! durations, hardware counters, and (across `--jobs` worker counts) the
//! merged trace bytes are compared against the empty-hub run.

use knl::arch::{ClusterMode, CoreId, MachineConfig, MemoryMode};
use knl::benchsuite::{pointer_chase, SweepExecutor};
use knl::sim::{
    AnalyzeLevel, CheckLevel, CoherenceChecker, Counters, Machine, ObserverConfig, Runner,
    TraceLevel, Tracer,
};

const ITERS: usize = 5;

fn configs() -> Vec<MachineConfig> {
    vec![
        // All flat-mode (the transfer workload's flag line sits at 1 GiB,
        // just past cache mode's addressable DDR range).
        MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat),
        MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat),
        MachineConfig::knl7210(ClusterMode::A2A, MemoryMode::Flat),
    ]
}

fn all_on() -> ObserverConfig {
    ObserverConfig::default()
        .check(CheckLevel::FullOracle)
        .trace(TraceLevel::Full)
        .analyze(AnalyzeLevel::Error)
}

/// Run the ownership-transfer workload on a fresh machine under `oc`;
/// returns everything an observer could have perturbed (plus the detached
/// tracer's serialized bytes, `None` when tracing was off).
fn run_case(
    cfg: &MachineConfig,
    oc: ObserverConfig,
) -> (u64, Vec<Option<u64>>, Counters, Option<String>) {
    let mut m = Machine::with_observer_config(cfg.clone(), oc);
    let programs = pointer_chase::transfer_programs(CoreId(8), CoreId(0), ITERS);
    let result = Runner::new(&mut m, programs).run();
    let durations: Vec<_> = (0..ITERS).map(|k| result.duration_ps(1, k)).collect();
    m.finish_check();
    let trace = m.take_tracer().map(|tr| {
        let mut s = String::new();
        tr.serialize_into(&mut s);
        s
    });
    (result.end_time, durations, m.counters(), trace)
}

#[test]
fn all_observers_on_is_bit_identical_to_off() {
    for cfg in configs() {
        let label = cfg.label();
        let (end_off, dur_off, ctr_off, trace_off) = run_case(&cfg, ObserverConfig::default());
        let (end_on, dur_on, ctr_on, trace_on) = run_case(&cfg, all_on());
        assert_eq!(end_off, end_on, "{label}: end_time moved");
        assert_eq!(dur_off, dur_on, "{label}: iteration durations moved");
        assert_eq!(ctr_off, ctr_on, "{label}: counters moved");
        assert_eq!(trace_off, None, "{label}: empty hub must have no tracer");
        assert!(
            trace_on.is_some(),
            "{label}: full hub must hand back a trace"
        );
    }
}

#[test]
fn merged_trace_bytes_identical_across_jobs() {
    // The same merge the figure binaries' `TraceSink` performs: per-job
    // sections in canonical job order. Worker count must not leak into a
    // single byte of it.
    let configs = configs();
    let merged = |jobs: usize| -> String {
        let sections = SweepExecutor::new(jobs).run("observer-hub", &configs, |i, cfg| {
            let (end, _, _, trace) = run_case(cfg, all_on());
            (i, end, trace.expect("tracing is on"))
        });
        let mut out = String::new();
        for (i, end, s) in sections {
            use std::fmt::Write as _;
            let _ = writeln!(out, "# job {i} end={end}");
            out.push_str(&s);
        }
        out
    };
    let serial = merged(1);
    let pooled = merged(2);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, pooled,
        "merged trace differs between --jobs 1 and 2"
    );
}

#[test]
fn registration_order_does_not_affect_output() {
    // The hub dispatches every event to every observer; whether the
    // checker or the tracer registered first must be unobservable in the
    // results, the counters, and the emitted metrics/trace bytes.
    let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
    let run = |checker_first: bool| {
        let mut m = Machine::new(cfg.clone());
        let ck = CoherenceChecker::new(CheckLevel::FullOracle, Counters::default()); // knl-lint: allow(observer-construct)
        let tr = Tracer::new(TraceLevel::Full); // knl-lint: allow(observer-construct)
        if checker_first {
            m.register_observer(Box::new(ck));
            m.register_observer(Box::new(tr));
        } else {
            m.register_observer(Box::new(tr));
            m.register_observer(Box::new(ck));
        }
        let programs = pointer_chase::transfer_programs(CoreId(8), CoreId(0), ITERS);
        let result = Runner::new(&mut m, programs).run();
        m.finish_check();
        let mut s = String::new();
        m.take_tracer()
            .expect("tracer registered")
            .serialize_into(&mut s);
        (result.end_time, m.counters(), s)
    };
    assert_eq!(run(true), run(false));
}
