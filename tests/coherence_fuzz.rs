//! Deterministic coherence fuzzing across the paper's fifteen
//! configurations: random multi-threaded read/write/evict programs run
//! under the full differential oracle (`--check full` semantics).
//!
//! Seed budget: `KNL_FUZZ_CASES` seeds per configuration (default 2 so
//! tier-1 stays fast; CI's fuzz-smoke step raises it). A failure report
//! names the offending line and dumps its recent protocol events; rerun
//! with `fuzz_case(&cfg, seed, CheckLevel::FullOracle)` at the printed
//! seed to reproduce (see DESIGN.md "Correctness checking").

use knl::arch::MachineConfig;
use knl::sim::fuzz::fuzz_case;
use knl::sim::{AccessKind, CheckLevel, Machine, ObserverConfig};

fn fuzz_cases() -> u64 {
    std::env::var("KNL_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

#[test]
fn fuzz_clean_across_all_fifteen_configurations() {
    let cases = fuzz_cases();
    for cfg in MachineConfig::all_fifteen() {
        for seed in 0..cases {
            fuzz_case(&cfg, seed, CheckLevel::FullOracle);
        }
    }
}

#[test]
fn fuzz_counters_identical_at_every_check_level() {
    // The checker observes; it must never steer. Counters from the same
    // seed agree across off / invariants / full.
    let cfg = MachineConfig::all_fifteen().remove(0);
    for seed in 40..40 + fuzz_cases() {
        let off = fuzz_case(&cfg, seed, CheckLevel::Off);
        let inv = fuzz_case(&cfg, seed, CheckLevel::Invariants);
        let full = fuzz_case(&cfg, seed, CheckLevel::FullOracle);
        assert_eq!(off, inv, "seed {seed}");
        assert_eq!(off, full, "seed {seed}");
    }
}

#[test]
#[should_panic(expected = "coherence violation")]
fn injected_skipped_invalidation_is_caught() {
    // The acceptance-criterion bug: a directory write that "forgets" to
    // invalidate one stale holder. The invariant checker must flag the
    // surviving sharer the moment the write transition is observed.
    let cfg = MachineConfig::all_fifteen().remove(0);
    let mut m =
        Machine::with_observer_config(cfg, ObserverConfig::default().check(CheckLevel::Invariants));
    m.set_jitter(0);
    use knl::arch::CoreId;
    let t = m.access(CoreId(0), 4096, AccessKind::Read, 0).complete;
    let t = m.access(CoreId(4), 4096, AccessKind::Read, t).complete;
    m.debug_skip_invalidation(true);
    m.access(CoreId(8), 4096, AccessKind::Write, t);
}
