//! Golden snapshots of the calibration output feeding Table I / Table II:
//! the full suite on two pinned configurations, serialized through
//! `knl_stats::json` (via `encode_suite`), compared bit-exactly against
//! `tests/golden/*.json`.
//!
//! The simulator is deterministic end to end, so any byte of drift means
//! the model's numbers moved. When a change is *intentional* (a timing
//! recalibration, a new suite field), regenerate the snapshots with
//!
//! ```text
//! KNL_UPDATE_GOLDEN=1 cargo test --test golden_snapshots
//! ```
//!
//! and review the JSON diff like source: every changed number is a
//! changed claim about the modeled KNL.

use knl::arch::{ClusterMode, MachineConfig, MemoryMode};
use knl::benchsuite::{decode_suite, encode_suite, run_full_suite, SuiteParams};
use std::path::PathBuf;

/// Tiny but full-coverage sweep parameters: every suite section runs, in
/// seconds, and the output shape matches the real calibration runs.
fn golden_params() -> SuiteParams {
    let mut p = SuiteParams::quick();
    p.iters = 3;
    p.c2c_sizes = vec![64, 512];
    p.contention_n = vec![1, 4];
    p.congestion_pairs = vec![1, 2];
    p.mem_threads = vec![1, 4];
    p.mem_lines_per_thread = 128;
    p.memlat_lines = 2 << 10;
    p
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check_golden(cfg: MachineConfig, name: &str) {
    let results = run_full_suite(&cfg, &golden_params());
    let encoded = encode_suite(&results);

    // The encoding itself must round-trip losslessly before it can serve
    // as a snapshot format.
    let decoded = decode_suite(&encoded).expect("snapshot JSON parses back");
    assert_eq!(
        encode_suite(&decoded),
        encoded,
        "{name}: encode/decode round-trip drifts"
    );

    let path = golden_path(name);
    if std::env::var_os("KNL_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &encoded).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `KNL_UPDATE_GOLDEN=1 cargo test --test golden_snapshots` to create it",
            path.display()
        )
    });
    assert_eq!(
        encoded, golden,
        "{name}: calibration output drifted from tests/golden/{name}.json \
         (KNL_UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

#[test]
fn golden_quadrant_flat_suite() {
    check_golden(
        MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat),
        "suite_quadrant_flat",
    );
}

#[test]
fn golden_quadrant_cache_suite() {
    check_golden(
        MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Cache),
        "suite_quadrant_cache",
    );
}
