//! Integration of the sort case study: the host implementation sorts
//! correctly at scale, the simulated traffic reproduces the paper's
//! MCDRAM≈DRAM result, and the Eq. 3–5 model tracks the simulated cost
//! within a band.

use knl::arch::{ClusterMode, MachineConfig, MemoryMode, NumaKind, Schedule};
use knl::model::sortmodel::{CostBasis, SortModel};
use knl::model::CapabilityModel;
use knl::sim::Machine;
use knl::sort::simsort::{run_simsort, SimSortSpec};
use knl::sort::{merge_runs, parallel_merge_sort};
use knl_arch::SplitMixRng;

#[test]
fn host_sort_correct_at_scale() {
    let mut rng = SplitMixRng::seed_from_u64(0xBEEF);
    let mut v: Vec<u32> = (0..2_000_000).map(|_| rng.next_u32()).collect();
    let mut expect = v.clone();
    expect.sort_unstable();
    parallel_merge_sort(&mut v, 4);
    assert_eq!(v, expect);
}

#[test]
fn merge_kernel_feeds_parallel_sort() {
    // The vectorized merge agrees with a scalar reference at awkward sizes.
    let mut rng = SplitMixRng::seed_from_u64(7);
    for (la, lb) in [(1000, 1), (16, 17), (4097, 255), (100_000, 99_999)] {
        let mut a: Vec<u32> = (0..la).map(|_| rng.next_u32()).collect();
        let mut b: Vec<u32> = (0..lb).map(|_| rng.next_u32()).collect();
        a.sort_unstable();
        b.sort_unstable();
        let mut out = vec![0; la + lb];
        merge_runs(&a, &b, &mut out);
        assert!(out.windows(2).all(|w| w[0] <= w[1]), "{la}+{lb}");
        assert_eq!(out.len(), la + lb);
    }
}

#[test]
fn simulated_sort_mcdram_no_benefit() {
    // The paper's headline: despite MCDRAM's 4–5x bandwidth, the sort sees
    // essentially none of it.
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    let mut m = Machine::new(cfg);
    m.set_jitter(0);
    let spec = |mem| SimSortSpec {
        bytes: 32 << 20,
        threads: 16,
        schedule: Schedule::FillTiles,
        memory: mem,
    };
    let dram = run_simsort(&mut m, &spec(NumaKind::Ddr));
    m.reset_caches();
    m.reset_devices();
    let mcdram = run_simsort(&mut m, &spec(NumaKind::Mcdram));
    let speedup = dram / mcdram;
    assert!(
        (0.8..1.4).contains(&speedup),
        "MCDRAM speedup for sort must be marginal: {speedup} ({dram}s vs {mcdram}s)"
    );
}

#[test]
fn model_tracks_simulated_sort() {
    // The bandwidth-basis model and the simulated execution agree within a
    // factor band across sizes (the paper's Fig. 10 agreement quality).
    let model = CapabilityModel::paper_reference();
    let sm = SortModel::new(&model, "DRAM");
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    for (bytes, threads) in [(4u64 << 20, 16usize), (16 << 20, 16), (32 << 20, 32)] {
        let mut m = Machine::new(cfg.clone());
        m.set_jitter(0);
        let spec = SimSortSpec {
            bytes,
            threads,
            schedule: Schedule::FillTiles,
            memory: NumaKind::Ddr,
        };
        let measured = run_simsort(&mut m, &spec);
        let predicted = sm.sort_seconds(bytes, threads, CostBasis::Bandwidth);
        let ratio = predicted / measured;
        assert!(
            (0.45..3.5).contains(&ratio),
            "bytes={bytes} threads={threads}: model {predicted}s vs sim {measured}s (x{ratio:.2})"
        );
        // The latency-basis model is the pessimistic envelope.
        let lat = sm.sort_seconds(bytes, threads, CostBasis::Latency);
        assert!(
            lat > measured,
            "latency model must upper-bound: {lat} vs {measured}"
        );
    }
}

#[test]
fn more_threads_help_until_overhead_wins() {
    // Cost decreases with threads for large inputs (memory-bound region).
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    let mut last = f64::INFINITY;
    for threads in [1usize, 4, 16] {
        let mut m = Machine::new(cfg.clone());
        m.set_jitter(0);
        let t = run_simsort(
            &mut m,
            &SimSortSpec {
                bytes: 16 << 20,
                threads,
                schedule: Schedule::FillTiles,
                memory: NumaKind::Ddr,
            },
        );
        assert!(t < last, "{threads} threads: {t} vs previous {last}");
        last = t;
    }
}
