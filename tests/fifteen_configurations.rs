//! The paper's fifteen configurations (5 cluster × 3 memory modes) all
//! construct, simulate, and respect their structural invariants.

use knl::arch::CoreId;
use knl::arch::{ClusterMode, MachineConfig, MemoryMode, NumaKind};
use knl::sim::{AccessKind, Machine};

#[test]
fn all_fifteen_simulate_an_access() {
    let configs = MachineConfig::all_fifteen();
    assert_eq!(configs.len(), 15);
    for cfg in configs {
        let label = cfg.label();
        let mut m = Machine::new(cfg);
        let out = m.access(CoreId(0), 4096, AccessKind::Read, 0);
        assert!(out.complete > 0, "{label}");
        // Second read is an L1 hit everywhere.
        let again = m.access(CoreId(0), 4096, AccessKind::Read, out.complete);
        assert!(
            again.complete - out.complete < 10_000,
            "{label}: L1 hit expected"
        );
    }
}

#[test]
fn numa_exposure_matches_mode() {
    for cfg in MachineConfig::all_fifteen() {
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let nodes = map.numa_nodes().len();
        let sw_clusters = if cfg.cluster.software_numa() {
            cfg.cluster.num_clusters()
        } else {
            1
        };
        let kinds = match cfg.memory {
            MemoryMode::Cache => 1,
            _ => 2,
        };
        assert_eq!(nodes, sw_clusters * kinds, "{}", cfg.label());
    }
}

#[test]
fn address_maps_cover_and_roundtrip() {
    for cfg in MachineConfig::all_fifteen() {
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let step = map.addressable_bytes() / 257; // prime-ish sampling
        for i in 0..256u64 {
            let addr = (i * step) & !63;
            let node = map
                .node_of(addr)
                .unwrap_or_else(|| panic!("{}: {addr:#x}", cfg.label()));
            assert!(node.range.contains(&addr));
            let _ = map.mem_target(addr);
            let home = map.home_directory(addr);
            assert!((home.0 as usize) < cfg.active_tiles, "{}", cfg.label());
        }
    }
}

#[test]
fn mcdram_capacity_only_flat_part_allocatable() {
    for cfg in MachineConfig::all_fifteen() {
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let m = Machine::new(cfg.clone());
        let arena = m.arena();
        let flat_mc = arena.remaining(NumaKind::Mcdram);
        let expect = cfg.memory.mcdram_flat_bytes(cfg.mcdram_bytes);
        // Allow line-rounding differences per cluster.
        assert!(
            (flat_mc as i64 - expect as i64).unsigned_abs() < 64 * 16,
            "{}: {flat_mc} vs {expect}",
            cfg.label()
        );
        assert_eq!(
            map.mcdram_cache_bytes(),
            cfg.memory.mcdram_cache_bytes(cfg.mcdram_bytes)
        );
    }
}

#[test]
fn hybrid_mode_has_both_cache_and_flat_mcdram() {
    let cfg = MachineConfig::knl7210(
        ClusterMode::Quadrant,
        MemoryMode::Hybrid(knl::arch::HybridSplit::Half),
    );
    let topo = cfg.topology();
    let map = cfg.address_map(&topo);
    assert!(map.mcdram_cache_bytes() > 0);
    assert!(map.numa_nodes().iter().any(|n| n.kind == NumaKind::Mcdram));

    // An access to a DDR line goes through the memory-side cache: a second
    // visit after dropping tile caches is served by the cache.
    let mut m = Machine::new(cfg);
    m.set_jitter(0);
    let out1 = m.access(CoreId(0), 8192, AccessKind::Read, 0);
    m.reset_tile_caches();
    let out2 = m.access(CoreId(0), 8192, AccessKind::Read, out1.complete + 1_000_000);
    use knl::sim::machine::ServedBy;
    assert!(
        matches!(out2.served_by, ServedBy::McacheHit { .. }),
        "{:?}",
        out2.served_by
    );
}
