//! End-to-end test of the paper's pipeline: benchmark → fit capability
//! model → model-tune algorithms → verify the tuned algorithms win on the
//! (simulated) machine and the model's envelope is meaningful.

use knl::arch::{ClusterMode, MachineConfig, MemoryMode, NumaKind, Schedule};
use knl::benchsuite::{run_cache_suite, run_memory_suite, SuiteParams, SuiteResults};
use knl::collectives::plan::RankPlan;
use knl::collectives::simspec;
use knl::model::predict::{predict_barrier, predict_broadcast};
use knl::model::tree_opt::binomial_tree;
use knl::model::{optimize_barrier, optimize_tree, CapabilityModel, TreeKind};
use knl::sim::Machine;
use knl::stats::median;

fn fitted_model() -> CapabilityModel {
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    let mut params = SuiteParams::quick();
    params.iters = 5;
    params.mem_lines_per_thread = 256;
    params.memlat_lines = 8 << 10;
    params.mem_threads = vec![1, 8, 32];
    let mut m = Machine::new(cfg.clone());
    let cache = run_cache_suite(&mut m, &params);
    m.reset_caches();
    m.reset_devices();
    let mem = run_memory_suite(&mut m, &params);
    CapabilityModel::from_suite(&SuiteResults {
        cluster: cfg.cluster,
        memory: cfg.memory,
        cache,
        mem,
    })
}

#[test]
fn measure_fit_tune_verify() {
    let model = fitted_model();

    // The fitted parameters are in the paper's bands.
    assert!((3.0..5.0).contains(&model.rl_ns), "R_L {}", model.rl_ns);
    assert!((80.0..170.0).contains(&model.rr_ns), "R_R {}", model.rr_ns);
    assert!(
        (25.0..45.0).contains(&model.contention.beta),
        "β {}",
        model.contention.beta
    );

    // Tune and run on the machine the model was fitted on.
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    let mut m = Machine::new(cfg.clone());
    let n = 32;
    let iters = 5;
    let mut arena = m.arena();
    let layout = simspec::SimLayout::alloc(&mut arena, NumaKind::Mcdram, n);

    // Barrier: tuned radix beats radix-2 and the flat gather.
    let plan = optimize_barrier(&model, n);
    let tuned = median(&simspec::run_collective(
        &mut m,
        simspec::dissemination_barrier_programs(n, plan.m, &layout, Schedule::Scatter, 64, iters),
        iters,
    ));
    m.reset_caches();
    let radix2 = median(&simspec::run_collective(
        &mut m,
        simspec::dissemination_barrier_programs(n, 1, &layout, Schedule::Scatter, 64, iters),
        iters,
    ));
    m.reset_caches();
    assert!(
        tuned <= radix2 * 1.05,
        "tuned radix m={} ({tuned} ns) must not lose to radix-2 ({radix2} ns)",
        plan.m
    );

    // The min–max envelope brackets the simulated barrier within slack.
    let envelope = predict_barrier(&model, n);
    assert!(
        tuned > envelope.best * 0.4 && tuned < envelope.worst * 2.5,
        "simulated {tuned} ns vs envelope {envelope:?}"
    );

    // Broadcast: the tuned tree beats the binomial tree run through the
    // *same* machinery (pure shape effect, no protocol differences).
    let tuned_tree = optimize_tree(&model, n, TreeKind::Broadcast).tree;
    let t_tuned = median(&simspec::run_collective(
        &mut m,
        simspec::tree_broadcast_programs(
            &RankPlan::direct(&tuned_tree),
            &layout,
            Schedule::Scatter,
            64,
            iters,
        ),
        iters,
    ));
    m.reset_caches();
    let t_binom = median(&simspec::run_collective(
        &mut m,
        simspec::tree_broadcast_programs(
            &RankPlan::direct(&binomial_tree(n)),
            &layout,
            Schedule::Scatter,
            64,
            iters,
        ),
        iters,
    ));
    assert!(
        t_tuned <= t_binom * 1.05,
        "tuned tree {t_tuned} ns must not lose to binomial {t_binom} ns"
    );

    let bcast_env = predict_broadcast(&model, n);
    assert!(
        t_tuned > bcast_env.best * 0.4 && t_tuned < bcast_env.worst * 3.0,
        "simulated broadcast {t_tuned} vs envelope {bcast_env:?}"
    );
}

#[test]
fn tuned_shapes_differ_across_operating_points() {
    // Model-tuning is not a constant answer: the optimal barrier radix and
    // tree shapes respond to n.
    let model = fitted_model();
    let b8 = optimize_barrier(&model, 8);
    let b64 = optimize_barrier(&model, 64);
    assert!(b8.r < b64.r || b8.m != b64.m, "{b8:?} vs {b64:?}");
    let t8 = optimize_tree(&model, 8, TreeKind::Broadcast).tree;
    let t32 = optimize_tree(&model, 32, TreeKind::Broadcast).tree;
    assert_ne!(t8.compact(), t32.compact());
}
