//! The parallel sweep determinism contract: a worker pool of any size
//! produces byte-for-byte the results of the serial path, and merged
//! results always come back in canonical job order regardless of which
//! worker finishes first.

use knl::arch::{ClusterMode, MachineConfig, MemoryMode, SplitMixRng};
use knl::benchsuite::{encode_suite, run_configs, run_configs_checked, SuiteParams, SweepExecutor};
use knl::sim::CheckLevel;

fn tiny_params() -> SuiteParams {
    let mut p = SuiteParams::quick();
    p.iters = 3;
    p.c2c_sizes = vec![64, 1 << 10];
    p.contention_n = vec![1, 4];
    p.congestion_pairs = vec![1, 4];
    p.mem_threads = vec![1, 8];
    p.mem_lines_per_thread = 256;
    p.memlat_lines = 4 << 10;
    p
}

/// Three of the fifteen configurations, spanning cluster and memory modes:
/// `--jobs 4` must reproduce the `--jobs 1` suite results bit-for-bit.
#[test]
fn jobs4_matches_jobs1_bitwise() {
    let configs = vec![
        MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat),
        MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Cache),
        MachineConfig::knl7210(ClusterMode::A2A, MemoryMode::Flat),
    ];
    let params = tiny_params();
    let serial = run_configs(&configs, &params, 1);
    let parallel = run_configs(&configs, &params, 4);
    assert_eq!(serial.len(), parallel.len());
    for ((cfg, (s, sc)), (p, pc)) in configs.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            s,
            p,
            "{}: parallel results diverge from serial",
            cfg.label()
        );
        assert_eq!(sc, pc, "{}: counters diverge", cfg.label());
        // Byte-level check through the canonical encoding as well, so a
        // future non-`PartialEq`-visible field can't sneak in divergence.
        assert_eq!(encode_suite(s), encode_suite(p), "{}", cfg.label());
    }
}

/// One configuration at `--check invariants` under `--jobs 2` vs
/// `--jobs 1`: the checker is deterministic and merge-order stable, and —
/// being a pure observer — leaves the results bit-identical to the
/// unchecked sweep.
#[test]
fn checked_sweep_is_deterministic_and_observer_only() {
    let configs = vec![MachineConfig::knl7210(
        ClusterMode::Quadrant,
        MemoryMode::Cache,
    )];
    let params = tiny_params();
    let serial = run_configs_checked(&configs, &params, 1, CheckLevel::Invariants);
    let parallel = run_configs_checked(&configs, &params, 2, CheckLevel::Invariants);
    assert_eq!(serial, parallel, "checked sweep diverges across --jobs");
    let unchecked = run_configs(&configs, &params, 2);
    assert_eq!(
        unchecked, parallel,
        "the checker must observe, never steer results"
    );
    assert_eq!(
        encode_suite(&serial[0].0),
        encode_suite(&parallel[0].0),
        "byte-level divergence"
    );
}

/// Merge order is the job order even when later jobs finish first: jobs
/// sleep for a seeded, decreasing duration so job 0 completes last.
#[test]
fn merge_order_is_job_order_not_completion_order() {
    let items: Vec<u64> = (0..16).collect();
    let exec = SweepExecutor::new(4);
    let out = exec.run("order", &items, |i, &x| {
        // Earlier jobs sleep longer — completion order is roughly the
        // reverse of job order; a seeded per-job jitter shuffles ties.
        let mut rng = SplitMixRng::for_job(7, i as u64);
        let jitter = rng.range_u64(0, 3);
        std::thread::sleep(std::time::Duration::from_millis(
            (items.len() as u64 - x) * 2 + jitter,
        ));
        (i, x * x)
    });
    let expect: Vec<(usize, u64)> = items.iter().map(|&x| (x as usize, x * x)).collect();
    assert_eq!(out, expect);
}

/// The executor clamps to at least one worker and handles the pool being
/// larger than the job list.
#[test]
fn more_workers_than_jobs() {
    let items = vec![10u32, 20];
    let out = SweepExecutor::new(64).run("overprovisioned", &items, |_i, &x| x + 1);
    assert_eq!(out, vec![11, 21]);
}
