//! Calibration tests: the benchmark suite, run on the simulator, must land
//! in bands around the paper's Table I and Table II numbers. These are the
//! contract that "the capability pipeline reproduces the paper's machine".
//!
//! Bands are deliberately generous (±~25% unless the paper itself is
//! tighter): the goal is shape, not decimal matching.

use knl::arch::{ClusterMode, MachineConfig, MemoryMode};
use knl::benchsuite::{run_cache_suite, run_memory_suite, SuiteParams};
use knl::sim::{Machine, StreamKind};
use knl::stats::fit_linear;

fn params() -> SuiteParams {
    let mut p = SuiteParams::quick();
    p.iters = 7;
    p.mem_lines_per_thread = 1024;
    p.mem_threads = vec![1, 8, 32, 64];
    p.memlat_lines = 16 << 10;
    p
}

fn in_band(x: f64, lo: f64, hi: f64, what: &str) {
    assert!((lo..=hi).contains(&x), "{what}: {x} outside [{lo}, {hi}]");
}

#[test]
fn table1_quadrant_bands() {
    let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
    let mut m = Machine::new(cfg);
    let c = run_cache_suite(&mut m, &params());

    // Latency rows (paper: 3.8 / 34 / 18 / 14 / 119 / 116 / 107–117).
    in_band(c.local_ns.as_ref().unwrap().median_ns(), 3.2, 4.4, "L1");
    let tile = |s: char| {
        c.tile_ns
            .iter()
            .find(|(x, _)| *x == s)
            .unwrap()
            .1
            .median_ns()
    };
    in_band(tile('M'), 27.0, 41.0, "tile M");
    in_band(tile('E'), 14.5, 22.0, "tile E");
    in_band(tile('S'), 11.0, 17.0, "tile S");
    let remote = |s: char| {
        c.remote_ns
            .iter()
            .find(|(x, _)| *x == s)
            .unwrap()
            .1
            .median_ns()
    };
    in_band(remote('M'), 95.0, 145.0, "remote M");
    in_band(remote('S'), 85.0, 130.0, "remote S");
    assert!(remote('M') > remote('S'), "M slower than S/F");

    // Bandwidth rows (paper: read 2.5, copy tile E 9.2, copy remote 7.5).
    in_band(c.read_bw_gbps, 1.8, 3.3, "read BW");
    let copy = |loc: &str, s: char| {
        c.copy_bw_gbps
            .iter()
            .find(|(l, x, _)| l == loc && *x == s)
            .unwrap()
            .2
    };
    in_band(copy("tile", 'E'), 7.0, 11.5, "copy tile E");
    in_band(copy("tile", 'M'), 5.5, 9.5, "copy tile M");
    in_band(copy("remote", 'M'), 5.5, 10.0, "copy remote");
    assert!(copy("tile", 'E') > copy("tile", 'M'), "E copy beats M copy");

    // Contention law (paper: 200 + 34·N).
    let xs: Vec<f64> = c.contention.iter().map(|(n, _)| *n as f64).collect();
    let ys: Vec<f64> = c.contention.iter().map(|(_, s)| s.median()).collect();
    let fit = fit_linear(&xs, &ys);
    in_band(fit.beta, 26.0, 43.0, "contention β");
    in_band(fit.alpha, 140.0, 280.0, "contention α");
    assert!(fit.r2 > 0.95, "contention linearity r²={}", fit.r2);

    // Congestion: none (paper Table I).
    let lo = c
        .congestion
        .iter()
        .map(|(_, l)| *l)
        .fold(f64::INFINITY, f64::min);
    let hi = c.congestion.iter().map(|(_, l)| *l).fold(0.0, f64::max);
    assert!(hi / lo < 1.25, "congestion must be flat: {lo}..{hi}");
}

#[test]
fn table2_flat_quadrant_bands() {
    let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
    let mut m = Machine::new(cfg);
    let r = run_memory_suite(&mut m, &params());

    // Latency (paper: DRAM 140, MCDRAM 167).
    in_band(r.latency("DRAM").unwrap(), 120.0, 165.0, "DRAM latency");
    in_band(r.latency("MCDRAM").unwrap(), 145.0, 200.0, "MCDRAM latency");
    assert!(r.latency("MCDRAM").unwrap() > r.latency("DRAM").unwrap());

    // DDR bandwidth (paper: read 77, write 36, copy ~70, triad ~74).
    in_band(
        r.table_cell(StreamKind::Read, "DRAM").unwrap(),
        60.0,
        85.0,
        "DDR read",
    );
    in_band(
        r.table_cell(StreamKind::Write, "DRAM").unwrap(),
        27.0,
        45.0,
        "DDR write",
    );
    in_band(
        r.table_cell(StreamKind::Copy, "DRAM").unwrap(),
        48.0,
        80.0,
        "DDR copy",
    );
    in_band(
        r.table_cell(StreamKind::Triad, "DRAM").unwrap(),
        52.0,
        85.0,
        "DDR triad",
    );

    // MCDRAM bandwidth at 64 threads (paper: read 314, write 171,
    // copy 333, triad 340; quick sweep reaches most of it).
    in_band(
        r.table_cell(StreamKind::Read, "MCDRAM").unwrap(),
        200.0,
        340.0,
        "MCDRAM read",
    );
    in_band(
        r.table_cell(StreamKind::Write, "MCDRAM").unwrap(),
        120.0,
        190.0,
        "MCDRAM write",
    );
    in_band(
        r.table_cell(StreamKind::Copy, "MCDRAM").unwrap(),
        230.0,
        380.0,
        "MCDRAM copy",
    );
    in_band(
        r.table_cell(StreamKind::Triad, "MCDRAM").unwrap(),
        230.0,
        490.0,
        "MCDRAM triad",
    );

    // Ratios that carry the paper's narrative.
    let mc = r.table_cell(StreamKind::Read, "MCDRAM").unwrap();
    let dd = r.table_cell(StreamKind::Read, "DRAM").unwrap();
    assert!(mc / dd > 3.0, "MCDRAM ~4-5x DDR, got {:.1}x", mc / dd);
}

#[test]
fn table2_cache_mode_bands() {
    let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Cache);
    let mut m = Machine::new(cfg);
    let r = run_memory_suite(&mut m, &params());

    // Cache-mode latency exceeds flat DRAM's (paper: 166-172 vs 140).
    in_band(
        r.latency("cache").unwrap(),
        150.0,
        230.0,
        "cache-mode latency",
    );

    // Cache-mode bandwidth sits between DDR and flat MCDRAM and is lower
    // than flat MCDRAM (the paper's qualitative point).
    let read = r.table_cell(StreamKind::Read, "cache").unwrap();
    in_band(read, 60.0, 220.0, "cache-mode read");

    let mut flat = Machine::new(MachineConfig::knl7210(
        ClusterMode::Quadrant,
        MemoryMode::Flat,
    ));
    let fr = run_memory_suite(&mut flat, &params());
    assert!(
        read < fr.table_cell(StreamKind::Read, "MCDRAM").unwrap(),
        "cache-mode read must trail flat MCDRAM"
    );
}

#[test]
fn cluster_modes_differ_mainly_in_bandwidth_not_latency() {
    // §III-B: "the performance difference between modes appears mainly in
    // terms of achievable memory bandwidth"; latencies stay close.
    let p = params();
    let mut lat = Vec::new();
    for cm in [ClusterMode::Snc4, ClusterMode::A2A] {
        let cfg = MachineConfig::knl7210(cm, MemoryMode::Flat);
        let mut m = Machine::new(cfg);
        let c = run_cache_suite(&mut m, &p);
        lat.push(
            c.remote_ns
                .iter()
                .find(|(s, _)| *s == 'M')
                .unwrap()
                .1
                .median_ns(),
        );
    }
    let ratio = lat[0].max(lat[1]) / lat[0].min(lat[1]);
    assert!(
        ratio < 1.2,
        "remote M latency across modes within 20%: {lat:?}"
    );
}
